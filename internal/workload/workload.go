// Package workload generates realistic traffic mixes. The paper
// motivates SUSS with the prevalence of small flows in Internet
// traffic (citing campus-traffic measurements: most flows are mice,
// most bytes live in elephants); this package provides the flow-size
// distributions and arrival processes to reproduce that regime.
package workload

import (
	"math"
	"math/rand"
	"time"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) int64
	// Name identifies the distribution in reports.
	Name() string
}

// Lognormal is the classic heavy-tailed web-object size model.
type Lognormal struct {
	// Mu and Sigma parameterize ln(size).
	Mu, Sigma float64
	// Min and Max clamp the samples (bytes).
	Min, Max int64
}

// Sample implements SizeDist.
func (l Lognormal) Sample(rng *rand.Rand) int64 {
	v := int64(math.Exp(l.Mu + l.Sigma*rng.NormFloat64()))
	if l.Min > 0 && v < l.Min {
		v = l.Min
	}
	if l.Max > 0 && v > l.Max {
		v = l.Max
	}
	return v
}

// Name implements SizeDist.
func (l Lognormal) Name() string { return "lognormal" }

// BoundedPareto models elephant tails: P(X > x) ∝ x^-Alpha on
// [Min, Max].
type BoundedPareto struct {
	Alpha    float64
	Min, Max int64
}

// Sample implements SizeDist (inverse-CDF of the bounded Pareto).
func (p BoundedPareto) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	lo := float64(p.Min)
	hi := float64(p.Max)
	la := math.Pow(lo, p.Alpha)
	ha := math.Pow(hi, p.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	v := int64(x)
	if v < p.Min {
		v = p.Min
	}
	if v > p.Max {
		v = p.Max
	}
	return v
}

// Name implements SizeDist.
func (p BoundedPareto) Name() string { return "bounded-pareto" }

// Mixture combines distributions with weights.
type Mixture struct {
	Dists   []SizeDist
	Weights []float64
	label   string
}

// NewMixture builds a weighted mixture (weights need not sum to 1).
func NewMixture(label string, dists []SizeDist, weights []float64) Mixture {
	if len(dists) != len(weights) || len(dists) == 0 {
		panic("workload: mixture needs matching non-empty dists and weights")
	}
	return Mixture{Dists: dists, Weights: weights, label: label}
}

// Sample implements SizeDist.
func (m Mixture) Sample(rng *rand.Rand) int64 {
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range m.Weights {
		if u < w {
			return m.Dists[i].Sample(rng)
		}
		u -= w
	}
	return m.Dists[len(m.Dists)-1].Sample(rng)
}

// Name implements SizeDist.
func (m Mixture) Name() string { return m.label }

// WebMix returns the mice-and-elephants mixture the paper's motivation
// describes: ~85 % small web objects (pages, images, API responses,
// median ≈ 30 KB) and ~15 % larger transfers (photos, short videos)
// with a Pareto tail to 50 MB. Most flows finish inside slow start.
func WebMix() SizeDist {
	return NewMixture("web-mix",
		[]SizeDist{
			Lognormal{Mu: math.Log(30 << 10), Sigma: 1.3, Min: 2 << 10, Max: 2 << 20},
			BoundedPareto{Alpha: 1.2, Min: 1 << 20, Max: 50 << 20},
		},
		[]float64{0.85, 0.15},
	)
}

// Arrivals generates a Poisson arrival process.
type Arrivals struct {
	// Rate is the mean arrivals per second.
	Rate float64
}

// Next returns the gap to the following arrival.
func (a Arrivals) Next(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() / a.Rate * float64(time.Second))
}

// Schedule samples n arrival times starting at base.
func (a Arrivals) Schedule(rng *rand.Rand, n int, base time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	at := base
	for i := range out {
		at += a.Next(rng)
		out[i] = at
	}
	return out
}
