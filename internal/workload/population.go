package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Class buckets a flow by the application archetype that generated it.
// The fleet experiment reports FCT distributions per class: SUSS's
// headline claim is about Web/RPC mice, while Video elephants dominate
// the bytes that congest the shared tree.
type Class uint8

const (
	// Web is a page/object fetch: heavy-tailed small transfers, the
	// population SUSS targets.
	Web Class = iota
	// RPC is a datacenter-style request/response: small and tightly
	// concentrated, typically one or two windows of data.
	RPC
	// Video is a streaming chunk: large, dominating bytes and queue
	// occupancy at the bottleneck.
	Video
	numClasses
)

// String implements fmt.Stringer for reports and CSV headers.
func (c Class) String() string {
	switch c {
	case Web:
		return "web"
	case RPC:
		return "rpc"
	case Video:
		return "video"
	}
	return fmt.Sprintf("class%d", uint8(c))
}

// Classes lists all flow classes in report order.
func Classes() []Class { return []Class{Web, RPC, Video} }

// ClassMix is one component of a population: a flow class, its share
// of arrivals, and the size distribution its flows draw from.
type ClassMix struct {
	Class  Class
	Weight float64
	Sizes  SizeDist
}

// DefaultMix returns the three-class population used by the fleet
// experiment: mice-dominated arrivals (most flows are web objects and
// RPCs) with a video-chunk class that carries most of the bytes — the
// regime the paper's motivation measures on campus traffic.
func DefaultMix() []ClassMix {
	return []ClassMix{
		{Class: Web, Weight: 0.70, Sizes: WebMix()},
		{Class: RPC, Weight: 0.20, Sizes: Lognormal{
			Mu: math.Log(4 << 10), Sigma: 0.8, Min: 512, Max: 256 << 10,
		}},
		{Class: Video, Weight: 0.10, Sizes: BoundedPareto{
			Alpha: 1.1, Min: 2 << 20, Max: 64 << 20,
		}},
	}
}

// ArrivalDist generates flow inter-arrival gaps: the process that
// spaces a population in time.
type ArrivalDist interface {
	// NextGap samples the gap to the next arrival.
	NextGap(rng *rand.Rand) time.Duration
	// Name identifies the process in reports.
	Name() string
}

// PoissonArrivals is the memoryless arrival process: exponential gaps
// with the given mean rate per second.
type PoissonArrivals struct {
	Rate float64 // mean arrivals per second
}

// NextGap implements ArrivalDist.
func (p PoissonArrivals) NextGap(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
}

// Name implements ArrivalDist.
func (p PoissonArrivals) Name() string { return "poisson" }

// LognormalArrivals models burstier-than-Poisson user behavior:
// log-normal gaps (think-time style clustering) with median gap
// exp(Mu) seconds and shape Sigma.
type LognormalArrivals struct {
	Mu, Sigma float64 // parameters of ln(gap seconds)
	// MaxGap clamps pathological tail samples; zero means 10× the
	// median.
	MaxGap time.Duration
}

// NextGap implements ArrivalDist.
func (l LognormalArrivals) NextGap(rng *rand.Rand) time.Duration {
	gap := time.Duration(math.Exp(l.Mu+l.Sigma*rng.NormFloat64()) * float64(time.Second))
	max := l.MaxGap
	if max <= 0 {
		max = time.Duration(10 * math.Exp(l.Mu) * float64(time.Second))
	}
	if gap > max {
		gap = max
	}
	if gap < 0 {
		gap = 0
	}
	return gap
}

// Name implements ArrivalDist.
func (l LognormalArrivals) Name() string { return "lognormal" }

// PopulationSpec describes a fleet-scale flow population
// deterministically: same spec + same seed ⇒ the same flows, on any
// machine, at any shard count.
type PopulationSpec struct {
	// Flows is the total population size across all shards.
	Flows int
	// Arrivals spaces the flows in time (per shard — shards are
	// independent trees, so each runs its own arrival process).
	Arrivals ArrivalDist
	// Mix is the class mixture; weights need not sum to 1. Empty means
	// DefaultMix.
	Mix []ClassMix
	// Seed roots all randomness. Shard seeds are derived from it, so
	// regenerating any one shard never needs the others.
	Seed int64
	// Start offsets the first arrival of every shard.
	Start time.Duration
}

// FlowSpec is one generated flow of a shard's population.
type FlowSpec struct {
	// ID is unique within the shard and stable across regenerations.
	ID    int
	Class Class
	// Size is the transfer size in bytes.
	Size int64
	// Start is the flow's arrival time.
	Start time.Duration
}

// shardSeed derives an independent RNG stream per shard. The mixing
// constants match the runner's per-job scheme: any fixed odd
// multiplier decorrelates adjacent shards under Go's rand source.
func (p PopulationSpec) shardSeed(shard int) int64 {
	return p.Seed*1000003 + int64(shard)*7919 + 1
}

// ShardFlows returns how many of the population's flows land in the
// given shard: Flows/nshards each, with the remainder spread over the
// first shards so totals always sum to Flows.
func (p PopulationSpec) ShardFlows(shard, nshards int) int {
	n := p.Flows / nshards
	if shard < p.Flows%nshards {
		n++
	}
	return n
}

// Shard generates the flow population of one shard. Generation is
// deterministic in (spec, shard, nshards) alone: each shard draws from
// its own derived RNG stream, so shards can be generated concurrently,
// in any order, or in isolation, and always produce identical flows.
func (p PopulationSpec) Shard(shard, nshards int) []FlowSpec {
	if nshards <= 0 {
		panic("workload: population needs at least one shard")
	}
	if shard < 0 || shard >= nshards {
		panic(fmt.Sprintf("workload: shard %d out of range [0,%d)", shard, nshards))
	}
	mix := p.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	var totalW float64
	for _, m := range mix {
		totalW += m.Weight
	}
	if totalW <= 0 {
		panic("workload: population mix has no weight")
	}
	arrivals := p.Arrivals
	if arrivals == nil {
		arrivals = PoissonArrivals{Rate: 100}
	}

	rng := rand.New(rand.NewSource(p.shardSeed(shard)))
	n := p.ShardFlows(shard, nshards)
	flows := make([]FlowSpec, n)
	at := p.Start
	for i := range flows {
		at += arrivals.NextGap(rng)
		u := rng.Float64() * totalW
		m := mix[len(mix)-1]
		for _, cand := range mix {
			if u < cand.Weight {
				m = cand
				break
			}
			u -= cand.Weight
		}
		flows[i] = FlowSpec{
			ID:    i,
			Class: m.Class,
			Size:  m.Sizes.Sample(rng),
			Start: at,
		}
	}
	return flows
}

// ClassCount tallies a generated shard by class.
func ClassCount(flows []FlowSpec) map[Class]int {
	out := make(map[Class]int, numClasses)
	for _, f := range flows {
		out[f.Class]++
	}
	return out
}

// Horizon returns a conservative end-of-interest time for a shard: the
// last arrival plus slack. Callers use it to bound simulated time when
// a stuck flow would otherwise run the simulator dry.
func Horizon(flows []FlowSpec, slack time.Duration) time.Duration {
	var last time.Duration
	for _, f := range flows {
		if f.Start > last {
			last = f.Start
		}
	}
	return last + slack
}

// SortByStart orders flows by arrival time (stable on ID), the order
// a shard replays them.
func SortByStart(flows []FlowSpec) {
	sort.SliceStable(flows, func(i, j int) bool {
		if flows[i].Start != flows[j].Start {
			return flows[i].Start < flows[j].Start
		}
		return flows[i].ID < flows[j].ID
	})
}
