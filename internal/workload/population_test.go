package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestPopulationShardDeterminism(t *testing.T) {
	spec := PopulationSpec{
		Flows:    1000,
		Arrivals: PoissonArrivals{Rate: 200},
		Seed:     42,
	}
	a := spec.Shard(2, 4)
	b := spec.Shard(2, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, shard) must regenerate identical flows")
	}
	// Generating another shard first must not disturb shard 2: streams
	// are independent, not a shared cursor.
	_ = spec.Shard(0, 4)
	c := spec.Shard(2, 4)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("shard generation order leaked into shard contents")
	}
}

func TestPopulationShardsDiffer(t *testing.T) {
	spec := PopulationSpec{Flows: 400, Seed: 7}
	a := spec.Shard(0, 4)
	b := spec.Shard(1, 4)
	if reflect.DeepEqual(a, b) {
		t.Fatal("distinct shards produced identical populations")
	}
	s2 := PopulationSpec{Flows: 400, Seed: 8}
	if reflect.DeepEqual(a, s2.Shard(0, 4)) {
		t.Fatal("different seeds produced identical shard 0")
	}
}

func TestPopulationShardCounts(t *testing.T) {
	spec := PopulationSpec{Flows: 10007, Seed: 1}
	for _, nshards := range []int{1, 3, 4, 8} {
		total := 0
		for s := 0; s < nshards; s++ {
			n := spec.ShardFlows(s, nshards)
			if got := len(spec.Shard(s, nshards)); got != n {
				t.Fatalf("shard %d/%d: ShardFlows says %d, generated %d", s, nshards, n, got)
			}
			total += n
		}
		if total != spec.Flows {
			t.Errorf("nshards=%d: shard counts sum to %d, want %d", nshards, total, spec.Flows)
		}
	}
}

func TestPopulationMixProportions(t *testing.T) {
	spec := PopulationSpec{Flows: 20000, Seed: 3}
	counts := ClassCount(spec.Shard(0, 1))
	n := float64(spec.Flows)
	// DefaultMix: web 0.70, rpc 0.20, video 0.10 — allow ±3 points.
	for _, tc := range []struct {
		class Class
		want  float64
	}{{Web, 0.70}, {RPC, 0.20}, {Video, 0.10}} {
		got := float64(counts[tc.class]) / n
		if got < tc.want-0.03 || got > tc.want+0.03 {
			t.Errorf("%s share = %.3f, want ≈%.2f", tc.class, got, tc.want)
		}
	}
}

func TestPopulationArrivalsMonotone(t *testing.T) {
	spec := PopulationSpec{
		Flows:    500,
		Arrivals: LognormalArrivals{Mu: -5, Sigma: 1.5},
		Seed:     11,
		Start:    time.Second,
	}
	flows := spec.Shard(0, 2)
	prev := time.Duration(0)
	for _, f := range flows {
		if f.Start < time.Second {
			t.Fatalf("flow %d starts at %v, before the %v offset", f.ID, f.Start, time.Second)
		}
		if f.Start < prev {
			t.Fatalf("arrivals not monotone: flow %d at %v after %v", f.ID, f.Start, prev)
		}
		prev = f.Start
		if f.Size <= 0 {
			t.Fatalf("flow %d has non-positive size %d", f.ID, f.Size)
		}
	}
	if h := Horizon(flows, time.Minute); h != prev+time.Minute {
		t.Errorf("Horizon = %v, want %v", h, prev+time.Minute)
	}
}

func TestLognormalArrivalsClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := LognormalArrivals{Mu: 0, Sigma: 4} // wild tail, median 1s
	for i := 0; i < 10000; i++ {
		gap := l.NextGap(rng)
		if gap < 0 || gap > 10*time.Second {
			t.Fatalf("gap %v escaped the default clamp", gap)
		}
	}
}

func TestSortByStart(t *testing.T) {
	flows := []FlowSpec{
		{ID: 2, Start: 3 * time.Second},
		{ID: 0, Start: time.Second},
		{ID: 1, Start: time.Second},
	}
	SortByStart(flows)
	wantIDs := []int{0, 1, 2}
	for i, f := range flows {
		if f.ID != wantIDs[i] {
			t.Fatalf("order after sort: got flow %d at position %d, want %d", f.ID, i, wantIDs[i])
		}
	}
}
