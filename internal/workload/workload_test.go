package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestLognormalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Lognormal{Mu: math.Log(30 << 10), Sigma: 1.3, Min: 2 << 10, Max: 2 << 20}
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < 2<<10 || v > 2<<20 {
			t.Fatalf("sample %d outside bounds", v)
		}
	}
}

func TestLognormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Lognormal{Mu: math.Log(30 << 10), Sigma: 1.3}
	var xs []float64
	for i := 0; i < 20000; i++ {
		xs = append(xs, float64(d.Sample(rng)))
	}
	sort.Float64s(xs)
	median := xs[len(xs)/2]
	// Median of a lognormal is e^mu = 30 KB.
	if median < 25<<10 || median > 36<<10 {
		t.Errorf("median = %.0f, want ≈30KB", median)
	}
}

func TestBoundedParetoBoundsAndTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := BoundedPareto{Alpha: 1.2, Min: 1 << 20, Max: 50 << 20}
	big := 0
	n := 20000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 1<<20 || v > 50<<20 {
			t.Fatalf("sample %d outside bounds", v)
		}
		if v > 10<<20 {
			big++
		}
	}
	// The tail must carry real mass but stay a minority.
	frac := float64(big) / float64(n)
	if frac < 0.02 || frac > 0.35 {
		t.Errorf("P(>10MB) = %.3f; tail mis-shaped", frac)
	}
}

func TestWebMixShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := WebMix()
	small, total := 0, 50000
	var bytesSmall, bytesAll float64
	for i := 0; i < total; i++ {
		v := d.Sample(rng)
		bytesAll += float64(v)
		if v <= 1<<20 {
			small++
			bytesSmall += float64(v)
		}
	}
	// Mice dominate counts...
	if frac := float64(small) / float64(total); frac < 0.7 {
		t.Errorf("small-flow fraction %.2f, want ≥0.7", frac)
	}
	// ...but elephants dominate bytes (the paper's motivating regime).
	if byteFrac := bytesSmall / bytesAll; byteFrac > 0.5 {
		t.Errorf("small flows carry %.2f of bytes; elephants should dominate", byteFrac)
	}
}

func TestMixtureValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched mixture should panic")
		}
	}()
	NewMixture("bad", []SizeDist{Lognormal{}}, []float64{1, 2})
}

func TestArrivalsMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Arrivals{Rate: 50}
	sched := a.Schedule(rng, 5000, 0)
	if !sort.SliceIsSorted(sched, func(i, j int) bool { return sched[i] < sched[j] }) {
		t.Fatal("arrivals not monotonic")
	}
	span := sched[len(sched)-1].Seconds()
	rate := float64(len(sched)) / span
	if rate < 45 || rate > 55 {
		t.Errorf("empirical rate %.1f, want ≈50", rate)
	}
}

// Property: samples are always within declared bounds for any seed.
func TestDistBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := WebMix()
		for i := 0; i < 500; i++ {
			v := d.Sample(rng)
			if v < 2<<10 || v > 50<<20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalsNextPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Arrivals{Rate: 10}
	for i := 0; i < 1000; i++ {
		if a.Next(rng) <= 0 {
			t.Fatal("non-positive inter-arrival")
		}
	}
	_ = time.Second
}
