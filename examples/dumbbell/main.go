// Dumbbell: the paper's fairness story (Figs. 2 and 15). A fifth flow
// joins four established CUBIC flows at a 50 Mbps bottleneck; with
// plain slow start the newcomer crawls toward its fair share, with
// SUSS it gets there almost immediately.
package main

import (
	"fmt"
	"log"
	"time"

	"suss"
)

func main() {
	base := suss.FairnessConfig{
		RTT:       100 * time.Millisecond,
		BufferBDP: 1,
		JoinAt:    20 * time.Second,
		Horizon:   50 * time.Second,
	}

	for _, withSUSS := range []bool{false, true} {
		cfg := base
		cfg.WithSUSS = withSUSS
		res, err := suss.RunFairness(cfg)
		if err != nil {
			log.Fatal(err)
		}
		name := "SUSS off"
		if withSUSS {
			name = "SUSS on"
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  fairness recovery (Jain ≥ 0.95): %v after the join\n", res.RecoveryTime)
		fmt.Printf("  mean post-join Jain index:       %.3f\n", res.MeanPostJoin)
		fmt.Print("  index per second after join:    ")
		for i, f := range res.Jain {
			if i >= 10 {
				break
			}
			fmt.Printf(" %.2f", f)
		}
		fmt.Println()
	}
	_ = time.Second
}
