// Webmix: the traffic regime the paper's introduction motivates —
// a mice-dominated web mix (pages, images, short videos) sharing a
// 50 Mbps bottleneck. Most flows finish inside slow start, which is
// why accelerating it moves the fleet-wide FCT distribution.
package main

import (
	"flag"
	"fmt"
	"log"

	"suss"
)

func main() {
	flows := flag.Int("flows", 80, "number of flows to launch")
	rate := flag.Float64("rate", 3, "Poisson arrival rate (flows/sec)")
	seed := flag.Int64("seed", 7, "workload RNG seed")
	flag.Parse()

	res, err := suss.RunWebWorkload(*flows, *rate, *seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d web-mix flows at %.1f/s over a shared 50 Mbps bottleneck\n\n", res.Flows, *rate)
	fmt.Printf("%-16s %12s %12s\n", "", "SUSS off", "SUSS on")
	fmt.Printf("%-16s %11.3fs %11.3fs\n", "mean FCT (all)", res.AllOff.MeanFCT, res.AllOn.MeanFCT)
	fmt.Printf("%-16s %11.3fs %11.3fs\n", "p95 FCT (all)", res.AllOff.P95FCT, res.AllOn.P95FCT)
	fmt.Printf("%-16s %11.3fs %11.3fs\n", "mean FCT (≤1MB)", res.SmallOff.MeanFCT, res.SmallOn.MeanFCT)
	fmt.Printf("%-16s %11.3fs %11.3fs\n", "p95 FCT (≤1MB)", res.SmallOff.P95FCT, res.SmallOn.P95FCT)
	fmt.Printf("\nper-flow FCT gain: mean %.1f%%, small flows %.1f%%\n",
		100*res.MeanImprovement, 100*res.SmallFlowImprovement)
}
