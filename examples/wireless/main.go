// Wireless: download over a simulated 4G last hop (stochastic
// bandwidth, correlated jitter, deep buffer) and print the cwnd ramp
// with SUSS off and on — the paper's Fig. 9 view, as a CLI.
package main

import (
	"fmt"
	"log"
	"time"

	"suss"
)

func main() {
	cfg := suss.PathConfig{
		RateMbps: 150, // LTE-A class link, as calibrated from the paper's Fig. 9
		RTT:      190 * time.Millisecond,
		Link:     suss.LTE4G,
		Seed:     7,
	}
	const size = 16 << 20

	for _, algo := range []suss.Algorithm{suss.CUBIC, suss.CUBICWithSUSS} {
		res, pts, err := suss.RunTrace(cfg, algo, size, 100*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — FCT %v, loss %.3f%%, retrans %d\n",
			algo, res.FCT.Round(time.Millisecond), 100*res.LossRate, res.Retransmissions)
		fmt.Println("   t        cwnd(segs)  srtt      delivered")
		for _, p := range pts {
			if p.T > 3*time.Second {
				break
			}
			fmt.Printf("   %-8v %-11d %-9v %6.2f MB\n",
				p.T.Round(10*time.Millisecond), p.CwndBytes/1448,
				p.SRTT.Round(time.Millisecond), float64(p.Delivered)/(1<<20))
		}
		fmt.Println()
	}
	fmt.Println("Note how SUSS roughly halves the rounds needed to open the window,")
	fmt.Println("while the smoothed RTT stays flat during the accelerated ramp.")
}
