// Quickstart: download the same 2 MB object over a 100 Mbps,
// 100 ms-RTT path with CUBIC and with CUBIC+SUSS, and print the flow
// completion times — the paper's headline comparison in one screen of
// code.
package main

import (
	"fmt"
	"log"
	"time"

	"suss"
)

func main() {
	cfg := suss.PathConfig{
		RateMbps:  100,
		RTT:       100 * time.Millisecond,
		BufferBDP: 1,
		Seed:      42,
	}
	const size = 2 << 20

	base, accel, improvement, err := suss.CompareFCT(cfg, suss.CUBIC, suss.CUBICWithSUSS, size)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2 MB over %.0f Mbps, %v RTT (1 BDP buffer)\n", cfg.RateMbps, cfg.RTT)
	fmt.Printf("  CUBIC       FCT %-12v retrans %d\n", base.FCT.Round(time.Millisecond), base.Retransmissions)
	fmt.Printf("  CUBIC+SUSS  FCT %-12v retrans %d  (max growth factor G=%d, %d accelerated rounds)\n",
		accel.FCT.Round(time.Millisecond), accel.Retransmissions, accel.MaxG, accel.AcceleratedRounds)
	fmt.Printf("  FCT improvement: %.1f%%  (paper reports >20%% for small flows on large-BDP paths)\n",
		100*improvement)
}
