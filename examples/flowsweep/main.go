// Flowsweep: FCT versus flow size for BBR, CUBIC and CUBIC+SUSS over
// one of the paper's internet scenarios — the Fig. 11/12 view of where
// SUSS's gains live (small flows) and where they taper off (large
// flows).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"suss"
)

func main() {
	scenario := flag.String("scenario", "google-tokyo/wifi", "internet scenario (see -list)")
	list := flag.Bool("list", false, "list available scenarios and exit")
	flag.Parse()

	if *list {
		for _, s := range suss.Scenarios() {
			fmt.Println(s)
		}
		return
	}

	sizes := []int64{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	algos := []suss.Algorithm{suss.BBRv1, suss.CUBIC, suss.CUBICWithSUSS}

	fmt.Printf("FCT vs flow size on %s\n", *scenario)
	fmt.Printf("%-8s %12s %12s %12s %14s\n", "size", "bbr", "cubic", "cubic+suss", "suss gain")
	for _, size := range sizes {
		var fcts []time.Duration
		for _, algo := range algos {
			res, err := suss.RunScenario(suss.InternetScenario(*scenario), algo, size, 11)
			if err != nil {
				log.Fatal(err)
			}
			fcts = append(fcts, res.FCT)
		}
		gain := 1 - fcts[2].Seconds()/fcts[1].Seconds()
		fmt.Printf("%-8s %12v %12v %12v %13.1f%%\n",
			sizeLabel(size),
			fcts[0].Round(time.Millisecond), fcts[1].Round(time.Millisecond),
			fcts[2].Round(time.Millisecond), 100*gain)
	}
}

func sizeLabel(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%gMB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%gKB", float64(n)/(1<<10))
}
