// Package suss is a userspace reproduction of "SUSS: Improving TCP
// Performance by Speeding Up Slow-Start" (ACM SIGCOMM 2024): the SUSS
// congestion-control add-on itself, the CUBIC+HyStart host algorithm
// it extends, BBRv1/BBRv2-lite baselines, a deterministic
// discrete-event network simulator with netem-style impairments, and
// runners that regenerate every table and figure in the paper's
// evaluation.
//
// This package is the public façade. A downstream user picks a path
// (either a synthetic one via PathConfig or one of the paper's 28
// internet scenarios), an Algorithm, and a transfer size:
//
//	res, err := suss.Run(suss.PathConfig{
//		RateMbps:  100,
//		RTT:       100 * time.Millisecond,
//		BufferBDP: 1,
//	}, suss.CUBICWithSUSS, 2<<20)
//
// Res carries the flow completion time, loss statistics, and the SUSS
// growth-factor history. RunTrace additionally returns the cwnd / RTT
// / delivered time series the paper's kernel logging produced.
//
// The heavy machinery lives under internal/: netsim (event loop,
// links, topologies), netem (impairments), tcp (transport + CC hooks),
// cubic, core (SUSS), bbr, scenarios (the 7×4 internet matrix and the
// local dumbbell testbed), experiments (per-figure runners), stats and
// trace. The cmd/sussbench binary regenerates the full evaluation;
// cmd/sussim runs a single flow with tracing.
package suss
