package suss

import (
	"fmt"
	"time"

	"suss/internal/experiments"
)

// FairnessConfig describes the paper's Fig. 15 workload on the local
// dumbbell testbed: four established flows, a fifth joining later,
// Jain's index watched over time.
type FairnessConfig struct {
	// RTT is the flows' base round-trip time (paper: 25–200 ms).
	RTT time.Duration
	// BufferBDP sizes the 50 Mbps bottleneck's buffer (paper: 1–2).
	BufferBDP float64
	// JoinAt is when the fifth flow starts (default 30 s).
	JoinAt time.Duration
	// Horizon ends the simulation (default JoinAt + 30 s).
	Horizon time.Duration
	// WithSUSS applies SUSS to all five (CUBIC) flows.
	WithSUSS bool
}

// FairnessResult reports how bandwidth sharing recovered after the
// fifth flow joined.
type FairnessResult struct {
	// Jain is Jain's fairness index per second from the join onward.
	Jain []float64
	// RecoveryTime is how long until the index returned above 0.95
	// (-1 if it never did within the horizon).
	RecoveryTime time.Duration
	// MeanPostJoin averages the index over the post-join window.
	MeanPostJoin float64
}

// RunFairness runs the late-joiner fairness experiment.
func RunFairness(cfg FairnessConfig) (FairnessResult, error) {
	if cfg.RTT <= 0 {
		return FairnessResult{}, fmt.Errorf("suss: RTT must be positive")
	}
	if cfg.BufferBDP <= 0 {
		cfg.BufferBDP = 1
	}
	if cfg.JoinAt <= 0 {
		cfg.JoinAt = 30 * time.Second
	}
	if cfg.Horizon <= cfg.JoinAt {
		cfg.Horizon = cfg.JoinAt + 30*time.Second
	}
	r := experiments.RunFig15(experiments.Fig15Config{RTT: cfg.RTT, BufferBDP: cfg.BufferBDP}, cfg.JoinAt, cfg.Horizon)
	v := 0
	if cfg.WithSUSS {
		v = 1
	}
	return FairnessResult{
		Jain:         r.Jain[v],
		RecoveryTime: r.RecoveryTime[v],
		MeanPostJoin: r.MeanPostJoin[v],
	}, nil
}
