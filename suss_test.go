package suss

import (
	"strings"
	"testing"
	"time"
)

func TestRunBasic(t *testing.T) {
	cfg := PathConfig{RateMbps: 100, RTT: 100 * time.Millisecond, BufferBDP: 1}
	res, err := Run(cfg, CUBICWithSUSS, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredBytes != 2<<20 {
		t.Errorf("delivered %d", res.DeliveredBytes)
	}
	if res.FCT <= 0 {
		t.Errorf("FCT = %v", res.FCT)
	}
	if res.MaxG < 4 {
		t.Errorf("MaxG = %d, want ≥4 on a 100 Mbps × 100 ms path", res.MaxG)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(PathConfig{RTT: time.Second, RateMbps: 0}, CUBIC, 1); err == nil {
		t.Error("zero rate must error")
	}
	if _, err := Run(PathConfig{RateMbps: 10}, CUBIC, 1); err == nil {
		t.Error("zero RTT must error")
	}
	if _, err := Run(PathConfig{RateMbps: 10, RTT: time.Second}, CUBIC, 0); err == nil {
		t.Error("zero size must error")
	}
	if _, err := Run(PathConfig{RateMbps: 10, RTT: time.Second, Link: "carrier-pigeon"}, CUBIC, 1); err == nil {
		t.Error("unknown link type must error")
	}
}

func TestCompareFCTHeadline(t *testing.T) {
	cfg := PathConfig{RateMbps: 100, RTT: 120 * time.Millisecond, BufferBDP: 1}
	_, _, imp, err := CompareFCT(cfg, CUBIC, CUBICWithSUSS, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if imp < 0.15 {
		t.Errorf("improvement %.1f%%, want ≥15%% (paper: >20%%)", 100*imp)
	}
}

func TestRunTrace(t *testing.T) {
	cfg := PathConfig{RateMbps: 50, RTT: 50 * time.Millisecond}
	res, pts, err := RunTrace(cfg, CUBIC, 1<<20, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no trace points")
	}
	// Sampling is rate-limited, so the last point may precede the final
	// ACK slightly — but it must be close to, and never beyond, the
	// transfer size.
	last := pts[len(pts)-1]
	if last.Delivered > res.DeliveredBytes || last.Delivered < res.DeliveredBytes*9/10 {
		t.Errorf("trace end delivered %d vs result %d", last.Delivered, res.DeliveredBytes)
	}
}

func TestScenariosCatalog(t *testing.T) {
	all := Scenarios()
	if len(all) != 28 {
		t.Fatalf("got %d scenarios", len(all))
	}
	found := false
	for _, s := range all {
		if s == "google-tokyo/4g" {
			found = true
		}
		if !strings.Contains(string(s), "/") {
			t.Errorf("malformed scenario name %q", s)
		}
	}
	if !found {
		t.Error("google-tokyo/4g missing from catalog")
	}
}

func TestRunScenario(t *testing.T) {
	res, err := RunScenario("oracle-london/5g", BBRv1, 512<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredBytes != 512<<10 {
		t.Errorf("delivered %d", res.DeliveredBytes)
	}
	if _, err := RunScenario("atlantis/6g", CUBIC, 1<<20, 1); err == nil {
		t.Error("unknown scenario must error")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		CUBIC: "cubic", CUBICWithSUSS: "cubic+suss", BBRv1: "bbr", BBRv2Lite: "bbr2",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestKmaxOverride(t *testing.T) {
	cfg := PathConfig{RateMbps: 500, RTT: 200 * time.Millisecond, BufferBDP: 1, Kmax: 2}
	res, err := Run(cfg, CUBICWithSUSS, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxG < 8 {
		t.Errorf("Kmax=2 on a huge-BDP path: MaxG = %d, want 8", res.MaxG)
	}
}

func TestRunFairnessValidation(t *testing.T) {
	if _, err := RunFairness(FairnessConfig{}); err == nil {
		t.Error("zero RTT must error")
	}
	// Defaults fill in: short run must produce a series.
	res, err := RunFairness(FairnessConfig{
		RTT:       50 * time.Millisecond,
		BufferBDP: 1,
		JoinAt:    5 * time.Second,
		Horizon:   15 * time.Second,
		WithSUSS:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jain) == 0 {
		t.Fatal("no Jain series")
	}
	for _, f := range res.Jain {
		if f < 0 || f > 1.000001 {
			t.Fatalf("Jain index %v out of range", f)
		}
	}
}

func TestRunWebWorkloadValidation(t *testing.T) {
	if _, err := RunWebWorkload(0, 1, 1); err == nil {
		t.Error("zero flows must error")
	}
	if _, err := RunWebWorkload(5, 0, 1); err == nil {
		t.Error("zero rate must error")
	}
	res, err := RunWebWorkload(10, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows != 10 || res.AllOff.MeanFCT <= 0 || res.AllOn.MeanFCT <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}
