package suss

// One benchmark per table and figure in the paper's evaluation, plus
// the ablations DESIGN.md calls out. Each benchmark runs the
// experiment at reduced fidelity per iteration and reports the
// headline quantity the paper's plot shows via b.ReportMetric, so
// `go test -bench . -benchmem` regenerates the whole evaluation in
// miniature. cmd/sussbench runs the full-fidelity version.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"suss/internal/experiments"
	"suss/internal/netem"
	"suss/internal/scenarios"
	"suss/internal/stats"
)

func BenchmarkFig01SlowStartUnderutilization(b *testing.B) {
	var deficit float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig01(30<<20, int64(i+1))
		deficit = r.RampLoss[0]
	}
	b.ReportMetric(deficit, "cubic-ramp-deficit-MB")
}

func BenchmarkFig02LateJoinerConvergence(b *testing.B) {
	var cubicShare, bbrShare float64
	for i := 0; i < b.N; i++ {
		rc := experiments.RunFig02(experiments.Cubic, 100*time.Millisecond, 2, 15*time.Second, 40*time.Second)
		rb := experiments.RunFig02(experiments.BBR2, 100*time.Millisecond, 2, 15*time.Second, 40*time.Second)
		cubicShare = rc.Fig02Mean(15)
		bbrShare = rb.Fig02Mean(15)
	}
	b.ReportMetric(cubicShare, "cubic-joiner-mean-share")
	b.ReportMetric(bbrShare, "bbr-joiner-mean-share")
}

func BenchmarkFig09CwndRTTDynamics(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig09(16<<20, int64(i+1))
		if r.TimeToExitCwnd[1] > 0 {
			speedup = float64(r.TimeToExitCwnd[0]) / float64(r.TimeToExitCwnd[1])
		}
	}
	b.ReportMetric(speedup, "ramp-speedup-x")
}

func BenchmarkFig10DataDelivery(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig09(16<<20, int64(i+1))
		if r.DeliveredAt2s[0] > 0 {
			gain = float64(r.DeliveredAt2s[1]) / float64(r.DeliveredAt2s[0])
		}
	}
	b.ReportMetric(gain, "delivered-at-2s-gain-x")
}

func BenchmarkFig11FCTvsFlowSize(b *testing.B) {
	sizes := []int64{512 << 10, 2 << 20, 8 << 20}
	var imp float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig11(scenarios.GoogleTokyo, sizes, 1, int64(i+1))
		imp = r.SmallFlowImprovement(2 << 20)
	}
	b.ReportMetric(100*imp, "small-flow-improvement-%")
}

func BenchmarkFig12FCTImprovement(b *testing.B) {
	// Fig. 12 is derived from the Fig. 11 sweep; benchmark the derived
	// quantity on the 4G column, where the paper highlights >20%.
	var imp float64
	for i := 0; i < b.N; i++ {
		sc := scenarios.New(scenarios.GoogleTokyo, netem.LTE4G, int64(i+1))
		c, _, errC := experiments.FCTs(sc, experiments.Cubic, 2<<20, 2)
		s, _, errS := experiments.FCTs(sc, experiments.Suss, 2<<20, 2)
		if errC != nil || errS != nil {
			b.Fatal(errC, errS)
		}
		imp = experiments.Improvement(stats.Mean(c), stats.Mean(s))
	}
	b.ReportMetric(100*imp, "tokyo-4g-2MB-improvement-%")
}

// BenchmarkFig11ParallelVsSequential runs the same reduced Fig. 11
// sweep once per iteration with a single worker and with a full
// GOMAXPROCS pool: the sub-benchmark wall clocks are the sequential
// vs parallel comparison point (the numbers produced are identical —
// see the determinism test in internal/experiments).
func BenchmarkFig11ParallelVsSequential(b *testing.B) {
	sizes := []int64{512 << 10, 2 << 20}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFig11(scenarios.GoogleTokyo, sizes, 1, int64(i+1), experiments.WithWorkers(workers))
				if r.Incomplete > 0 {
					b.Fatalf("%d incomplete downloads", r.Incomplete)
				}
			}
		})
	}
}

func BenchmarkFig13LargeFlowNoImpact(b *testing.B) {
	var early, total float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig13(int64(i + 1))
		early = r.ImprovementAt[0]
		total = r.TotalImprovement
	}
	b.ReportMetric(100*early, "improvement-at-1MB-%")
	b.ReportMetric(100*total, "improvement-at-100MB-%")
}

func BenchmarkFig14PacketLoss(b *testing.B) {
	sizes := []int64{2 << 20, 8 << 20}
	var off, on float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig14(sizes, 1, int64(i+1))
		off, on = r.Loss[0][0], r.Loss[1][0]
	}
	b.ReportMetric(100*off, "loss-2MB-suss-off-%")
	b.ReportMetric(100*on, "loss-2MB-suss-on-%")
}

func BenchmarkFig15Fairness(b *testing.B) {
	cfg := experiments.Fig15Config{RTT: 200 * time.Millisecond, BufferBDP: 1}
	var off, on float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig15(cfg, 15*time.Second, 40*time.Second)
		off, on = r.MeanPostJoin[0], r.MeanPostJoin[1]
	}
	b.ReportMetric(off, "jain-post-join-suss-off")
	b.ReportMetric(on, "jain-post-join-suss-on")
}

func BenchmarkFig16StabilityTrace(b *testing.B) {
	var largeFCT, smallFCT float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig16(experiments.Cubic, experiments.Suss, 100*time.Millisecond, 1, 40<<20)
		largeFCT = r.LargeFCT
		smallFCT = stats.Mean(r.SmallFCTs)
	}
	b.ReportMetric(largeFCT, "large-fct-s")
	b.ReportMetric(smallFCT, "small-fct-mean-s")
}

func BenchmarkTable1Stability(b *testing.B) {
	var imp, delta float64
	for i := 0; i < b.N; i++ {
		off := experiments.RunFig16(experiments.Cubic, experiments.Cubic, 100*time.Millisecond, 1, 40<<20)
		on := experiments.RunFig16(experiments.Cubic, experiments.Suss, 100*time.Millisecond, 1, 40<<20)
		imp = experiments.Improvement(stats.Mean(off.SmallFCTs), stats.Mean(on.SmallFCTs))
		delta = (on.LargeFCT - off.LargeFCT) / off.LargeFCT
	}
	b.ReportMetric(100*imp, "small-flow-improvement-%")
	b.ReportMetric(100*delta, "large-flow-fct-delta-%")
}

func BenchmarkFig17LossAllScenarios(b *testing.B) {
	// One representative high-loss cell (London/5G, a1-style) plus a
	// benign one; the full 28-cell sweep lives in cmd/sussbench.
	var lossSussOff, lossSussOn float64
	for i := 0; i < b.N; i++ {
		sc := scenarios.New(scenarios.OracleLondon, netem.NR5G, int64(i+1))
		var errOff, errOn error
		_, lossSussOff, errOff = experiments.FCTs(sc, experiments.Cubic, 4<<20, 1)
		_, lossSussOn, errOn = experiments.FCTs(sc, experiments.Suss, 4<<20, 1)
		if errOff != nil || errOn != nil {
			b.Fatal(errOff, errOn)
		}
	}
	b.ReportMetric(100*lossSussOff, "loss-suss-off-%")
	b.ReportMetric(100*lossSussOn, "loss-suss-on-%")
}

func BenchmarkFig18AllScenarios(b *testing.B) {
	// A row of the matrix per iteration keeps the bench minutes-scale;
	// report the paper's headline: mean small-flow improvement.
	var imp float64
	for i := 0; i < b.N; i++ {
		var xs []float64
		for _, sc := range scenarios.All(int64(i + 1))[:4] { // row a
			cell := experiments.RunMatrixCell(sc, []int64{2 << 20}, 1)
			xs = append(xs, cell.Improvement[0])
		}
		imp = stats.Mean(xs)
	}
	b.ReportMetric(100*imp, "row-a-2MB-improvement-%")
}

func BenchmarkAblationKmax(b *testing.B) {
	var fct1, fct3 float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationKmax(8<<20, 1, int64(i+1))
		fct1, fct3 = r.FCT[0], r.FCT[2]
	}
	b.ReportMetric(fct1, "kmax1-fct-s")
	b.ReportMetric(fct3, "kmax3-fct-s")
}

func BenchmarkAblationPacingVsBurst(b *testing.B) {
	var pacedQ, burstQ float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationMechanisms(2<<20, 1, int64(i+1))
		pacedQ, burstQ = float64(r.PeakQ[0]), float64(r.PeakQ[1])
	}
	b.ReportMetric(pacedQ, "paced-peak-queue-B")
	b.ReportMetric(burstQ, "burst-peak-queue-B")
}

func BenchmarkAblationBtlBwVariation(b *testing.B) {
	var off, on float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunBtlBwVariation("drop", 8<<20, int64(i+1))
		off, on = r.FCTOff, r.FCTOn
	}
	b.ReportMetric(off, "drop-fct-suss-off-s")
	b.ReportMetric(on, "drop-fct-suss-on-s")
}

func BenchmarkAblationSlowStartExits(b *testing.B) {
	var hystart, hspp, suss float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunSlowStartExitComparison(2<<20, 1, int64(i+1))
		hystart, hspp, suss = r.FCT[0], r.FCT[1], r.FCT[2]
	}
	b.ReportMetric(hystart, "hystart-fct-s")
	b.ReportMetric(hspp, "hystartpp-fct-s")
	b.ReportMetric(suss, "suss-fct-s")
}

func BenchmarkWebMixWorkload(b *testing.B) {
	var small float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunWebMix(30, 3, int64(i+1))
		small = r.SmallImprovement
	}
	b.ReportMetric(100*small, "small-flow-improvement-%")
}

func BenchmarkFutureWorkBBRSuss(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFutureWorkBBRSuss([]int64{2 << 20}, 1, int64(i+1))
		imp = r.Improvement[0]
	}
	b.ReportMetric(100*imp, "bbr-suss-2MB-improvement-%")
}

// BenchmarkCorePublicAPI measures the library's end-to-end cost for a
// typical single-flow simulation (engineering metric, not a paper
// figure).
func BenchmarkCorePublicAPI(b *testing.B) {
	cfg := PathConfig{RateMbps: 100, RTT: 100 * time.Millisecond, BufferBDP: 1}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := Run(cfg, CUBICWithSUSS, 2<<20); err != nil {
			b.Fatal(err)
		}
	}
}
