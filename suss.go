package suss

import (
	"fmt"
	"io"
	"time"

	"suss/internal/core"
	"suss/internal/experiments"
	"suss/internal/netem"
	"suss/internal/netsim"
	"suss/internal/obs"
	"suss/internal/scenarios"
	"suss/internal/tcp"
	"suss/internal/trace"
)

// Algorithm selects the congestion controller for a flow.
type Algorithm int

const (
	// CUBIC is Linux-default CUBIC with HyStart (the paper's "SUSS
	// off" baseline).
	CUBIC Algorithm = iota
	// CUBICWithSUSS enables the SUSS slow-start accelerator.
	CUBICWithSUSS
	// BBRv1 is the model-based baseline.
	BBRv1
	// BBRv2Lite is BBRv1 plus a loss-bounded inflight ceiling.
	BBRv2Lite
	// Reno is classic AIMD (RFC 5681) without any slow-start
	// acceleration — the yardstick baseline.
	Reno
)

// String implements fmt.Stringer.
func (a Algorithm) String() string { return a.algo().String() }

func (a Algorithm) algo() experiments.Algo {
	switch a {
	case CUBIC:
		return experiments.Cubic
	case CUBICWithSUSS:
		return experiments.Suss
	case BBRv1:
		return experiments.BBR
	case BBRv2Lite:
		return experiments.BBR2
	case Reno:
		return experiments.Reno
	default:
		panic("suss: unknown algorithm")
	}
}

// LinkType names a last-hop technology for PathConfig.
type LinkType string

// Last-hop technologies, matching the paper's client links.
const (
	Wired LinkType = "wired"
	WiFi  LinkType = "wifi"
	LTE4G LinkType = "4g"
	NR5G  LinkType = "5g"
)

func (lt LinkType) netem() (netem.LinkType, error) {
	switch lt {
	case "", Wired:
		return netem.Wired, nil
	case WiFi:
		return netem.WiFi, nil
	case LTE4G:
		return netem.LTE4G, nil
	case NR5G:
		return netem.NR5G, nil
	default:
		return 0, fmt.Errorf("suss: unknown link type %q", lt)
	}
}

// PathConfig describes a single sender→receiver path: a fast core and
// a last-hop bottleneck with the impairments of the chosen link type.
type PathConfig struct {
	// RateMbps is the last hop's mean downstream rate in Mbit/s.
	RateMbps float64
	// RTT is the propagation round-trip time.
	RTT time.Duration
	// BufferBDP sizes the bottleneck buffer in bandwidth-delay
	// products (0 picks the link type's default).
	BufferBDP float64
	// Link selects the last-hop technology (default Wired).
	Link LinkType
	// Seed makes stochastic impairments reproducible.
	Seed int64

	// Kmax overrides SUSS's growth-exponent bound when the algorithm
	// is CUBICWithSUSS (0 = the paper's default of 1, i.e. G ≤ 4).
	Kmax int
}

func (cfg PathConfig) scenario() (scenarios.Scenario, error) {
	lt, err := cfg.Link.netem()
	if err != nil {
		return scenarios.Scenario{}, err
	}
	if cfg.RateMbps <= 0 {
		return scenarios.Scenario{}, fmt.Errorf("suss: RateMbps must be positive, got %v", cfg.RateMbps)
	}
	if cfg.RTT <= 0 {
		return scenarios.Scenario{}, fmt.Errorf("suss: RTT must be positive, got %v", cfg.RTT)
	}
	prof := netem.DefaultProfile(lt, cfg.RateMbps*1e6)
	if cfg.BufferBDP > 0 {
		prof.BufferBDPs = cfg.BufferBDP
	}
	return scenarios.Scenario{
		Link:     lt,
		RTT:      cfg.RTT,
		LastHop:  prof,
		CoreRate: 1e9,
		Seed:     cfg.Seed,
	}, nil
}

// Result summarizes one transfer.
type Result struct {
	// FCT is the receiver-side flow completion time.
	FCT time.Duration
	// DeliveredBytes should equal the requested size.
	DeliveredBytes int64
	// Retransmissions and RTOs count recovery activity.
	Retransmissions int
	RTOs            int
	// LossRate is drops at the bottleneck over packets offered to it.
	LossRate float64
	// MaxG is the largest SUSS growth factor used (0 unless
	// CUBICWithSUSS).
	MaxG int
	// AcceleratedRounds counts slow-start rounds with G > 2.
	AcceleratedRounds int
}

// TracePoint is one sample of a flow's transport state.
type TracePoint struct {
	T         time.Duration
	CwndBytes int64
	SRTT      time.Duration
	Delivered int64
}

// FlightRecorder exposes what an observed run recorded: the
// structured per-flow event log (ring-buffered; oldest events are
// overwritten once the buffer fills) and the per-flow / per-link
// counter registry. Exports are read-only views; the recorder is
// detached from the simulation by the time callers see it.
type FlightRecorder struct {
	reg *obs.Registry
}

// WriteEventsJSONL writes the retained events as JSON Lines.
func (f *FlightRecorder) WriteEventsJSONL(w io.Writer) error {
	return obs.WriteEventsJSONL(w, f.reg.Events())
}

// WriteEventsCSV writes the retained events as CSV.
func (f *FlightRecorder) WriteEventsCSV(w io.Writer) error {
	return obs.WriteEventsCSV(w, f.reg.Events())
}

// WriteTimeline writes a human-readable per-event narrative.
func (f *FlightRecorder) WriteTimeline(w io.Writer) error {
	return obs.WriteTimeline(w, f.reg.Events())
}

// WriteCounters dumps every flow and link counter block.
func (f *FlightRecorder) WriteCounters(w io.Writer) error {
	return obs.WriteCounters(w, f.reg)
}

// Run transfers size bytes over the configured path with the given
// algorithm and returns the outcome.
func Run(cfg PathConfig, algo Algorithm, size int64) (Result, error) {
	res, _, _, err := run(cfg, algo, size, 0, false)
	return res, err
}

// RunTrace is Run plus the cwnd/RTT/delivered time series, sampled at
// most once per the given interval (0 = every ACK).
func RunTrace(cfg PathConfig, algo Algorithm, size int64, every time.Duration) (Result, []TracePoint, error) {
	res, pts, _, err := run(cfg, algo, size, every, false)
	return res, pts, err
}

// RunObserved is Run with a flight recorder attached to the sender,
// receiver, congestion controller and every forward link; the
// returned recorder holds the run's event log and counters.
func RunObserved(cfg PathConfig, algo Algorithm, size int64) (Result, *FlightRecorder, error) {
	res, _, fr, err := run(cfg, algo, size, 0, true)
	return res, fr, err
}

// RunTraceObserved combines RunTrace and RunObserved in one simulation.
func RunTraceObserved(cfg PathConfig, algo Algorithm, size int64, every time.Duration) (Result, []TracePoint, *FlightRecorder, error) {
	return run(cfg, algo, size, every, true)
}

func run(cfg PathConfig, algo Algorithm, size int64, every time.Duration, observe bool) (Result, []TracePoint, *FlightRecorder, error) {
	if size <= 0 {
		return Result{}, nil, nil, fmt.Errorf("suss: size must be positive, got %d", size)
	}
	sc, err := cfg.scenario()
	if err != nil {
		return Result{}, nil, nil, err
	}
	sim := netsim.NewSimulator()
	p, _ := sc.Build(sim)
	f := tcp.NewFlow(sim, tcp.DefaultConfig(), 1, p.Sender, tcp.NewDemux(p.Sender), p.Receiver, tcp.NewDemux(p.Receiver), size, nil)
	if algo == CUBICWithSUSS && cfg.Kmax > 0 {
		opt := core.DefaultOptions()
		opt.Kmax = cfg.Kmax
		f.Sender.SetController(core.New(f.Sender, opt))
	} else {
		f.Sender.SetController(experiments.NewController(algo.algo(), f.Sender))
	}
	var rec *FlightRecorder
	if observe {
		reg := obs.NewRegistry(0)
		fr := reg.Flow(1)
		f.Sender.AttachRecorder(fr)
		f.Receiver.AttachRecorder(fr)
		if a, ok := f.Sender.Controller().(interface {
			AttachRecorder(*obs.FlowRecorder)
		}); ok {
			a.AttachRecorder(fr)
		}
		for i, l := range p.Fwd {
			l.AttachRecorder(reg.Link(fmt.Sprintf("fwd%d/%s", i, l.Name())))
		}
		rec = &FlightRecorder{reg: reg}
	}
	tr := trace.Attach(f.Sender, algo.String(), every)
	f.StartAt(sim, 0)
	sim.Run(30 * time.Minute)
	if !f.Done() {
		return Result{}, nil, rec, fmt.Errorf("suss: transfer did not complete within the simulation horizon (delivered %d of %d bytes)",
			f.Sender.Delivered(), size)
	}

	last := p.Fwd[len(p.Fwd)-1].Stats()
	res := Result{
		FCT:             f.FCT(),
		DeliveredBytes:  f.Sender.Delivered(),
		Retransmissions: f.Sender.Stats().Retransmissions,
		RTOs:            f.Sender.Stats().RTOs,
	}
	if offered := last.EnqueuedPackets + last.DroppedPackets; offered > 0 {
		res.LossRate = float64(last.DroppedPackets+last.ErasedPackets) / float64(offered)
	}
	if s, ok := f.Sender.Controller().(*core.Suss); ok {
		res.MaxG = s.Stats().MaxG
		res.AcceleratedRounds = s.Stats().AcceleratedRounds
	}
	pts := make([]TracePoint, len(tr.Samples))
	for i, s := range tr.Samples {
		pts[i] = TracePoint{T: s.T, CwndBytes: s.CwndBytes, SRTT: s.SRTT, Delivered: s.Delivered}
	}
	return res, pts, rec, nil
}

// InternetScenario names one cell of the paper's 7-server × 4-link
// matrix, e.g. "google-tokyo/4g". See Scenarios for the full list.
type InternetScenario string

// Scenarios lists the paper's 28 internet-testbed scenarios.
func Scenarios() []InternetScenario {
	var out []InternetScenario
	for _, sc := range scenarios.All(1) {
		out = append(out, InternetScenario(sc.Name()))
	}
	return out
}

// RunScenario transfers size bytes over a named internet scenario.
func RunScenario(name InternetScenario, algo Algorithm, size int64, seed int64) (Result, error) {
	for _, sc := range scenarios.All(seed) {
		if sc.Name() == string(name) {
			r := experiments.Download(sc, algo.algo(), size, 0, nil)
			if !r.Completed {
				return Result{}, fmt.Errorf("suss: scenario %s did not complete", name)
			}
			return Result{
				FCT:               r.FCT,
				DeliveredBytes:    r.Delivered,
				Retransmissions:   r.Retrans,
				RTOs:              r.RTOs,
				LossRate:          r.LossRate,
				MaxG:              r.MaxG,
				AcceleratedRounds: r.AccelRounds,
			}, nil
		}
	}
	return Result{}, fmt.Errorf("suss: unknown scenario %q (see Scenarios())", name)
}

// CompareFCT runs the same transfer under two algorithms and returns
// both results plus the relative FCT improvement of b over a.
func CompareFCT(cfg PathConfig, a, b Algorithm, size int64) (ra, rb Result, improvement float64, err error) {
	ra, err = Run(cfg, a, size)
	if err != nil {
		return
	}
	rb, err = Run(cfg, b, size)
	if err != nil {
		return
	}
	improvement = experiments.Improvement(ra.FCT.Seconds(), rb.FCT.Seconds())
	return
}
