package suss_test

import (
	"fmt"
	"time"

	"suss"
)

// The headline comparison: the same 2 MB transfer over a large-BDP
// path with SUSS off and on. The simulator is deterministic, so this
// example's output is stable.
func ExampleCompareFCT() {
	cfg := suss.PathConfig{RateMbps: 100, RTT: 100 * time.Millisecond, BufferBDP: 1, Seed: 42}
	base, accel, imp, err := suss.CompareFCT(cfg, suss.CUBIC, suss.CUBICWithSUSS, 2<<20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("CUBIC %v → CUBIC+SUSS %v (%.0f%% faster, max G=%d)\n",
		base.FCT.Round(time.Millisecond), accel.FCT.Round(time.Millisecond), 100*imp, accel.MaxG)
	// Output:
	// CUBIC 772ms → CUBIC+SUSS 522ms (32% faster, max G=4)
}

// Running a named internet scenario from the paper's 28-cell matrix.
func ExampleRunScenario() {
	res, err := suss.RunScenario("google-tokyo/wired", suss.CUBICWithSUSS, 1<<20, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d bytes, accelerated rounds: %d\n", res.DeliveredBytes, res.AcceleratedRounds)
	// Output:
	// delivered 1048576 bytes, accelerated rounds: 4
}

// Tracing a flow's congestion window the way the paper's kernel
// logging does (Fig. 9).
func ExampleRunTrace() {
	cfg := suss.PathConfig{RateMbps: 100, RTT: 100 * time.Millisecond, BufferBDP: 1, Seed: 1}
	_, pts, err := suss.RunTrace(cfg, suss.CUBICWithSUSS, 1<<20, 50*time.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Printf("trace has samples: %v, cwnd grows: %v\n",
		len(pts) > 3, pts[len(pts)-1].CwndBytes > pts[0].CwndBytes)
	// Output:
	// trace has samples: true, cwnd grows: true
}
