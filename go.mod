module suss

go 1.22
