package suss

import (
	"fmt"

	"suss/internal/experiments"
)

// WorkloadStats summarizes per-flow completion times for one variant
// of a workload run (seconds).
type WorkloadStats struct {
	MeanFCT float64
	P95FCT  float64
}

// WorkloadResult compares CUBIC and CUBIC+SUSS on a realistic
// mice-and-elephants web mix sharing a 50 Mbps bottleneck — the
// traffic regime the paper's introduction motivates.
type WorkloadResult struct {
	Flows int
	// Off/On hold the SUSS-off / SUSS-on aggregates.
	AllOff, AllOn     WorkloadStats
	SmallOff, SmallOn WorkloadStats
	// SmallFlowImprovement is the mean per-flow FCT gain for flows
	// ≤ 1 MB (the paper's headline population).
	SmallFlowImprovement float64
	// MeanImprovement is the mean per-flow gain across all flows.
	MeanImprovement float64
}

// RunWebWorkload launches n flows with heavy-tailed web-mix sizes and
// Poisson arrivals (arrivalRate flows/sec) over the local dumbbell
// testbed, once per variant, and compares per-flow FCTs.
func RunWebWorkload(n int, arrivalRate float64, seed int64) (WorkloadResult, error) {
	if n <= 0 || arrivalRate <= 0 {
		return WorkloadResult{}, fmt.Errorf("suss: need positive flow count and arrival rate")
	}
	r := experiments.RunWebMix(n, arrivalRate, seed)
	return WorkloadResult{
		Flows:                r.Flows,
		AllOff:               WorkloadStats{MeanFCT: r.All[0].Mean, P95FCT: r.All[0].P95},
		AllOn:                WorkloadStats{MeanFCT: r.All[1].Mean, P95FCT: r.All[1].P95},
		SmallOff:             WorkloadStats{MeanFCT: r.Small[0].Mean, P95FCT: r.Small[0].P95},
		SmallOn:              WorkloadStats{MeanFCT: r.Small[1].Mean, P95FCT: r.Small[1].P95},
		SmallFlowImprovement: r.SmallImprovement,
		MeanImprovement:      r.MeanImprovement,
	}, nil
}
