package suss

import (
	"fmt"

	"suss/internal/experiments"
	"suss/internal/workload"
)

// The traffic-model vocabulary below is re-exported from
// internal/workload verbatim: the internal package is the single
// source of truth for flow-size distributions and arrival processes,
// and the public API cannot drift from it.

// SizeDist samples flow sizes in bytes.
type SizeDist = workload.SizeDist

// Lognormal is the classic heavy-tailed web-object size model.
type Lognormal = workload.Lognormal

// BoundedPareto models elephant tails: P(X > x) ∝ x^-Alpha on
// [Min, Max].
type BoundedPareto = workload.BoundedPareto

// SizeMixture combines size distributions with weights.
type SizeMixture = workload.Mixture

// WebMixSizes returns the mice-and-elephants mixture the paper's
// motivation describes (~85 % small web objects, ~15 % large
// transfers with a Pareto tail).
func WebMixSizes() SizeDist { return workload.WebMix() }

// FlowClass buckets a population flow by application archetype
// (web / RPC / video).
type FlowClass = workload.Class

// ClassMix is one component of a population: a class, its arrival
// share, and its size distribution.
type ClassMix = workload.ClassMix

// DefaultClassMix returns the three-class population mix used by the
// fleet experiment.
func DefaultClassMix() []ClassMix { return workload.DefaultMix() }

// ArrivalDist generates flow inter-arrival gaps.
type ArrivalDist = workload.ArrivalDist

// PoissonArrivals is the memoryless arrival process.
type PoissonArrivals = workload.PoissonArrivals

// LognormalArrivals models burstier-than-Poisson arrival clustering.
type LognormalArrivals = workload.LognormalArrivals

// PopulationSpec describes a fleet-scale flow population with
// deterministic per-shard generation.
type PopulationSpec = workload.PopulationSpec

// FlowSpec is one generated flow of a shard's population.
type FlowSpec = workload.FlowSpec

// WorkloadStats summarizes per-flow completion times for one variant
// of a workload run (seconds).
type WorkloadStats struct {
	MeanFCT float64
	P95FCT  float64
}

// WorkloadResult compares CUBIC and CUBIC+SUSS on a realistic
// mice-and-elephants web mix sharing a 50 Mbps bottleneck — the
// traffic regime the paper's introduction motivates.
type WorkloadResult struct {
	Flows int
	// Off/On hold the SUSS-off / SUSS-on aggregates.
	AllOff, AllOn     WorkloadStats
	SmallOff, SmallOn WorkloadStats
	// SmallFlowImprovement is the mean per-flow FCT gain for flows
	// ≤ 1 MB (the paper's headline population).
	SmallFlowImprovement float64
	// MeanImprovement is the mean per-flow gain across all flows.
	MeanImprovement float64
}

// RunWebWorkload launches n flows with heavy-tailed web-mix sizes and
// Poisson arrivals (arrivalRate flows/sec) over the local dumbbell
// testbed, once per variant, and compares per-flow FCTs.
func RunWebWorkload(n int, arrivalRate float64, seed int64) (WorkloadResult, error) {
	if n <= 0 || arrivalRate <= 0 {
		return WorkloadResult{}, fmt.Errorf("suss: need positive flow count and arrival rate")
	}
	r := experiments.RunWebMix(n, arrivalRate, seed)
	return WorkloadResult{
		Flows:                r.Flows,
		AllOff:               WorkloadStats{MeanFCT: r.All[0].Mean, P95FCT: r.All[0].P95},
		AllOn:                WorkloadStats{MeanFCT: r.All[1].Mean, P95FCT: r.All[1].P95},
		SmallOff:             WorkloadStats{MeanFCT: r.Small[0].Mean, P95FCT: r.Small[0].P95},
		SmallOn:              WorkloadStats{MeanFCT: r.Small[1].Mean, P95FCT: r.Small[1].P95},
		SmallFlowImprovement: r.SmallImprovement,
		MeanImprovement:      r.MeanImprovement,
	}, nil
}
